module Net = Petri.Net
module Bitset = Petri.Bitset
module Invariant = Petri.Invariant
module Counter = Gpo_obs.Counter
module Gauge = Gpo_obs.Gauge
module Span = Gpo_obs.Span

type query = Deadlock | Safety

type rule =
  | Dead_transition
  | Unread_place
  | Constant_place
  | Duplicate_place
  | Duplicate_transition
  | Identity_transition
  | Agglomeration

let all_rules =
  [
    Dead_transition;
    Duplicate_transition;
    Identity_transition;
    Unread_place;
    Constant_place;
    Duplicate_place;
    Agglomeration;
  ]

let rule_name = function
  | Dead_transition -> "dead_transition"
  | Unread_place -> "unread_place"
  | Constant_place -> "constant_place"
  | Duplicate_place -> "duplicate_place"
  | Duplicate_transition -> "duplicate_transition"
  | Identity_transition -> "identity_transition"
  | Agglomeration -> "agglomeration"

(* Identity_transition keeps the reachable set intact but can turn a live
   marking into a dead one (the removed self-loop may have been the only
   enabled transition), so it only fires for coverability queries. *)
let preserves query rule =
  match (query, rule) with
  | Deadlock, Identity_transition -> false
  | _, _ -> true

type t = {
  original : Net.t;
  net : Net.t;
  query : query;
  rounds : int;
  applied : (rule * int) list;
  expansions : int array array;
  place_origin : int array;
  degraded : bool;
}

let rule_counters =
  List.map (fun r -> (r, Counter.make ("reduce.rule." ^ rule_name r))) all_rules

let counter_of r = List.assq r rule_counters
let c_runs = Counter.make "reduce.runs"
let c_degraded = Counter.make "reduce.degraded"
let g_ratio = Gauge.make "reduce.ratio"
let fault_site = "reduce.rule"

(* Intermediate pipeline state: the current net plus the composed inverse
   mapping back to the original (transition expansions, place origins) and
   the per-place protection mask. *)
type state = {
  snet : Net.t;
  exp : int array array;
  origin : int array;
  prot : bool array;
}

let initial_state ?(protect = []) (net : Net.t) =
  let prot = Array.make net.n_places false in
  List.iter
    (fun p ->
      if p < 0 || p >= net.n_places then
        invalid_arg (Printf.sprintf "Reduce.run: protected place %d out of range" p);
      prot.(p) <- true)
    protect;
  {
    snet = net;
    exp = Array.init net.n_transitions (fun t -> [| t |]);
    origin = Array.init net.n_places Fun.id;
    prot;
  }

(* Rebuild the net keeping only the masked places/transitions; surviving
   arcs are renumbered, arcs to removed places vanish.  The inverse
   mapping columns of removed entities are dropped with them. *)
let filter_state st ~keep_place ~keep_trans =
  let net = st.snet in
  let pmap = Array.make net.n_places (-1) in
  let np' = ref 0 in
  for p = 0 to net.n_places - 1 do
    if keep_place.(p) then (
      pmap.(p) <- !np';
      incr np')
  done;
  let kept_ts = ref [] in
  for t = net.n_transitions - 1 downto 0 do
    if keep_trans.(t) then kept_ts := t :: !kept_ts
  done;
  let kept_ts = Array.of_list !kept_ts in
  let remap ps =
    Array.of_list
      (Array.to_list ps
      |> List.filter_map (fun p -> if keep_place.(p) then Some pmap.(p) else None))
  in
  let arcs =
    Array.mapi
      (fun i t -> (i, remap net.pre_list.(t), remap net.post_list.(t)))
      kept_ts
  in
  let keep_idx mask a =
    let out = ref [] in
    for i = Array.length a - 1 downto 0 do
      if mask.(i) then out := a.(i) :: !out
    done;
    Array.of_list !out
  in
  let snet =
    Net.make ~name:net.name
      ~place_names:(keep_idx keep_place net.place_names)
      ~transition_names:(Array.map (fun t -> net.transition_names.(t)) kept_ts)
      ~arcs
      ~initial:
        (Bitset.elements net.initial
        |> List.filter_map (fun p -> if keep_place.(p) then Some pmap.(p) else None))
  in
  {
    snet;
    exp = Array.map (fun t -> st.exp.(t)) kept_ts;
    origin = keep_idx keep_place st.origin;
    prot = keep_idx keep_place st.prot;
  }

(* Defensive floor: engines expect non-degenerate nets, so a pass never
   erases the last place or transition — it leaves one candidate alone
   instead (keeping a dead/identity transition or an unread place is
   always sound, just less reduction). *)
let spare_one mask removable =
  if removable > 0 && removable = Array.length mask then (
    let rec first i = if mask.(i) then i else first (i + 1) in
    mask.(first 0) <- false;
    removable - 1)
  else removable

(* --- Dead transitions ------------------------------------------------- *)

(* [t] is structurally dead when (a) some input place has no producers and
   starts empty, or (b) a non-negative P-semiflow [y] proves
   [y·pre(t) > y·m0]: in set semantics firing only moves or absorbs
   tokens, so [y·m <= y·m0] along every run and [t] never enables.
   The semiflow criterion is the expensive half (Farkas enumeration), so
   it only runs on the first fixpoint round — any subset of the dead
   transitions is a sound pass, and later rounds keep the cheap
   producerless criterion. *)
let dead_transition_pass ~first_round st =
  let net = st.snet in
  let unmarkable p =
    Array.length net.producers.(p) = 0 && not (Bitset.mem p net.initial)
  in
  let flows =
    if (not first_round) || net.n_places > 200 then []
    else
      match Invariant.p_semiflows ~max_count:128 net with
      | ys -> ys
      | exception Failure _ -> []
  in
  let flows =
    List.map (fun y -> (y, Invariant.invariant_value net y net.initial)) flows
  in
  let dead = Array.make net.n_transitions false in
  let n = ref 0 in
  for t = 0 to net.n_transitions - 1 do
    if
      Array.exists unmarkable net.pre_list.(t)
      || List.exists
           (fun (y, bound) -> Invariant.invariant_value net y net.pre.(t) > bound)
           flows
    then (
      dead.(t) <- true;
      incr n)
  done;
  let n = spare_one dead !n in
  if n = 0 then (st, 0)
  else
    ( filter_state st
        ~keep_place:(Array.make net.n_places true)
        ~keep_trans:(Array.map not dead),
      n )

(* --- Duplicate transitions -------------------------------------------- *)

let duplicate_transition_pass st =
  let net = st.snet in
  let seen = Hashtbl.create net.n_transitions in
  let drop = Array.make net.n_transitions false in
  let n = ref 0 in
  for t = 0 to net.n_transitions - 1 do
    let key = (Bitset.elements net.pre.(t), Bitset.elements net.post.(t)) in
    if Hashtbl.mem seen key then (
      drop.(t) <- true;
      incr n)
    else Hashtbl.add seen key ()
  done;
  if !n = 0 then (st, 0)
  else
    ( filter_state st
        ~keep_place:(Array.make net.n_places true)
        ~keep_trans:(Array.map not drop),
      !n )

(* --- Identity transitions (safety only) -------------------------------- *)

let identity_transition_pass st =
  let net = st.snet in
  let drop = Array.make net.n_transitions false in
  let n = ref 0 in
  for t = 0 to net.n_transitions - 1 do
    if Bitset.equal net.pre.(t) net.post.(t) then (
      drop.(t) <- true;
      incr n)
  done;
  let n = spare_one drop !n in
  if n = 0 then (st, 0)
  else
    ( filter_state st
        ~keep_place:(Array.make net.n_places true)
        ~keep_trans:(Array.map not drop),
      n )

(* --- Unread places ----------------------------------------------------- *)

let unread_place_pass st =
  let net = st.snet in
  let drop = Array.make net.n_places false in
  let n = ref 0 in
  for p = 0 to net.n_places - 1 do
    if (not st.prot.(p)) && Array.length net.consumers.(p) = 0 then (
      drop.(p) <- true;
      incr n)
  done;
  let n = spare_one drop !n in
  if n = 0 then (st, 0)
  else
    ( filter_state st ~keep_place:(Array.map not drop)
        ~keep_trans:(Array.make net.n_transitions true),
      n )

(* --- Constant places --------------------------------------------------- *)

(* [p] starts marked and every consumer returns it, so in set semantics it
   stays marked forever and constrains nothing: erase it from every
   pre/postset (filter_state drops the arcs with the place). *)
let constant_place_pass st =
  let net = st.snet in
  let drop = Array.make net.n_places false in
  let n = ref 0 in
  for p = 0 to net.n_places - 1 do
    if
      (not st.prot.(p))
      && Bitset.mem p net.initial
      && Array.length net.consumers.(p) > 0
      && Array.for_all (fun t -> Bitset.mem p net.post.(t)) net.consumers.(p)
    then (
      drop.(p) <- true;
      incr n)
  done;
  let n = spare_one drop !n in
  if n = 0 then (st, 0)
  else
    ( filter_state st ~keep_place:(Array.map not drop)
        ~keep_trans:(Array.make net.n_transitions true),
      n )

(* --- Duplicate places -------------------------------------------------- *)

let duplicate_place_pass st =
  let net = st.snet in
  let seen = Hashtbl.create net.n_places in
  let drop = Array.make net.n_places false in
  let n = ref 0 in
  for p = 0 to net.n_places - 1 do
    let key =
      ( Bitset.mem p net.initial,
        Array.to_list net.consumers.(p),
        Array.to_list net.producers.(p) )
    in
    if Hashtbl.mem seen key then (
      if not st.prot.(p) then (
        drop.(p) <- true;
        incr n))
    else Hashtbl.add seen key ()
  done;
  if !n = 0 then (st, 0)
  else
    ( filter_state st ~keep_place:(Array.map not drop)
        ~keep_trans:(Array.make net.n_transitions true),
      !n )

(* --- Agglomeration ----------------------------------------------------- *)

let fresh_name taken base =
  if not (Hashtbl.mem taken base) then base
  else
    let rec go i =
      let candidate = Printf.sprintf "%s~%d" base i in
      if Hashtbl.mem taken candidate then go (i + 1) else candidate
    in
    go 2

(* Post-agglomeration of a serial chain: [p] empty initially, consumed
   only by [b] with [•b = {p}], produced by [H] (with [b ∉ H]).  Each
   [a ∈ H] fuses with [b] into [a+b] with [•(a+b) = •a] and
   [(a+b)• = (a• ∖ {p}) ∪ b•]; [p], [b] and [H] disappear.  Note
   [p ∉ •a] (else [a ∈ consumers(p) = {b}]) and [p ∉ b•] (else
   [b ∈ H]), so the fused arcs need no further cleanup.  The witness
   expansion of [a+b] is [exp(a) @ exp(b)] — firing [a] immediately
   followed by [b] is the original run the fused step stands for. *)
let apply_agglomeration st p =
  let net = st.snet in
  let b = net.consumers.(p).(0) in
  let h = net.producers.(p) in
  let removed_t = Array.make net.n_transitions false in
  removed_t.(b) <- true;
  Array.iter (fun a -> removed_t.(a) <- true) h;
  let pmap = Array.make net.n_places (-1) in
  let np' = ref 0 in
  for q = 0 to net.n_places - 1 do
    if q <> p then (
      pmap.(q) <- !np';
      incr np')
  done;
  let kept_ts = ref [] in
  for t = net.n_transitions - 1 downto 0 do
    if not removed_t.(t) then kept_ts := t :: !kept_ts
  done;
  let kept_ts = Array.of_list !kept_ts in
  let remap ps =
    Array.of_list
      (Array.to_list ps
      |> List.filter_map (fun q -> if q = p then None else Some pmap.(q)))
  in
  let taken = Hashtbl.create 16 in
  Array.iter (fun t -> Hashtbl.add taken net.transition_names.(t) ()) kept_ts;
  let fused_names =
    Array.map
      (fun a ->
        let name =
          fresh_name taken
            (net.transition_names.(a) ^ "+" ^ net.transition_names.(b))
        in
        Hashtbl.add taken name ();
        name)
      h
  in
  let n_kept = Array.length kept_ts in
  let transition_names =
    Array.append (Array.map (fun t -> net.transition_names.(t)) kept_ts) fused_names
  in
  let arcs =
    Array.init
      (n_kept + Array.length h)
      (fun i ->
        if i < n_kept then
          let t = kept_ts.(i) in
          (i, remap net.pre_list.(t), remap net.post_list.(t))
        else
          let a = h.(i - n_kept) in
          let post =
            Bitset.union (Bitset.remove p net.post.(a)) net.post.(b)
          in
          (i, remap net.pre_list.(a), remap (Array.of_list (Bitset.elements post))))
  in
  let keep_idx a =
    let out = ref [] in
    for i = Array.length a - 1 downto 0 do
      if i <> p then out := a.(i) :: !out
    done;
    Array.of_list !out
  in
  let snet =
    Net.make ~name:net.name
      ~place_names:(keep_idx net.place_names)
      ~transition_names ~arcs
      ~initial:
        (Bitset.elements net.initial
        |> List.filter_map (fun q -> if q = p then None else Some pmap.(q)))
  in
  let exp =
    Array.append
      (Array.map (fun t -> st.exp.(t)) kept_ts)
      (Array.map (fun a -> Array.append st.exp.(a) st.exp.(b)) h)
  in
  { snet; exp; origin = keep_idx st.origin; prot = keep_idx st.prot }

let agglomeration_candidate st =
  let net = st.snet in
  if net.n_places <= 1 then None
  else
    let ok p =
      (not st.prot.(p))
      && (not (Bitset.mem p net.initial))
      && Array.length net.consumers.(p) = 1
      && Array.length net.producers.(p) > 0
      &&
      let b = net.consumers.(p).(0) in
      Array.length net.pre_list.(b) = 1
      && not (Array.exists (Int.equal b) net.producers.(p))
    in
    let rec find p =
      if p >= net.n_places then None else if ok p then Some p else find (p + 1)
    in
    find 0

let agglomeration_pass st =
  let rec go st n =
    match agglomeration_candidate st with
    | None -> (st, n)
    | Some p -> go (apply_agglomeration st p) (n + 1)
  in
  go st 0

(* --- Fixpoint driver --------------------------------------------------- *)

let pass_of_rule ~first_round = function
  | Dead_transition -> dead_transition_pass ~first_round
  | Unread_place -> unread_place_pass
  | Constant_place -> constant_place_pass
  | Duplicate_place -> duplicate_place_pass
  | Duplicate_transition -> duplicate_transition_pass
  | Identity_transition -> identity_transition_pass
  | Agglomeration -> agglomeration_pass

let rule_index r =
  let rec go i = function
    | [] -> assert false
    | r' :: rest -> if r' == r then i else go (i + 1) rest
  in
  go 0 all_rules

let round ~first_round rules counts st =
  List.fold_left
    (fun (st, changed) r ->
      Guard.Fault.probe fault_site;
      let st', n =
        Span.time
          ("reduce.rule." ^ rule_name r)
          (fun () -> (pass_of_rule ~first_round r) st)
      in
      if n > 0 then (
        Counter.add (counter_of r) n;
        counts.(rule_index r) <- counts.(rule_index r) + n);
      (st', changed || n > 0))
    (st, false) rules

let identity ?(query = Deadlock) (net : Net.t) =
  {
    original = net;
    net;
    query;
    rounds = 0;
    applied = [];
    expansions = Array.init net.n_transitions (fun t -> [| t |]);
    place_origin = Array.init net.n_places Fun.id;
    degraded = false;
  }

let is_identity r = r.net == r.original

let ratio r =
  float_of_int (r.original.Net.n_places + r.original.Net.n_transitions)
  /. float_of_int (max 1 (r.net.Net.n_places + r.net.Net.n_transitions))

let run ?(query = Deadlock) ?protect ?rules ?(max_rounds = 64) (net : Net.t) =
  let rules =
    List.filter (preserves query)
      (match rules with Some rs -> rs | None -> all_rules)
  in
  Counter.incr c_runs;
  List.iter (fun (_, c) -> Counter.touch c) rule_counters;
  let result =
    match
      Span.time "reduce.pipeline" (fun () ->
          let counts = Array.make (List.length all_rules) 0 in
          let rec fix st n =
            if n >= max_rounds then (st, n)
            else
              let st', changed = round ~first_round:(n = 0) rules counts st in
              if changed then fix st' (n + 1) else (st', n)
          in
          let st, rounds = fix (initial_state ?protect net) 0 in
          let applied =
            List.filter_map
              (fun r ->
                let n = counts.(rule_index r) in
                if n > 0 then Some (r, n) else None)
              all_rules
          in
          if applied = [] then identity ~query net
          else
            {
              original = net;
              net = st.snet;
              query;
              rounds;
              applied;
              expansions = st.exp;
              place_origin = st.origin;
              degraded = false;
            })
    with
    | r -> r
    | exception Out_of_memory ->
        (* A (possibly injected) allocation failure anywhere in the
           pipeline degrades to the identity reduction: intermediate
           states are immutable, so no half-applied mapping can leak. *)
        Counter.incr c_degraded;
        { (identity ~query net) with degraded = true }
  in
  Gauge.set g_ratio (ratio result);
  result

let lift r trace =
  List.concat_map (fun t -> Array.to_list r.expansions.(t)) trace

let place_image r p =
  let n = Array.length r.place_origin in
  let rec go i =
    if i >= n then None else if r.place_origin.(i) = p then Some i else go (i + 1)
  in
  go 0

let pp_summary ppf r =
  Format.fprintf ppf "%d places, %d transitions -> %d places, %d transitions (%.2fx"
    r.original.Net.n_places r.original.Net.n_transitions r.net.Net.n_places
    r.net.Net.n_transitions (ratio r);
  if r.degraded then Format.fprintf ppf "; degraded";
  Format.fprintf ppf ")";
  List.iter
    (fun (rule, n) -> Format.fprintf ppf ", %s: %d" (rule_name rule) n)
    r.applied
