(** Structural reduction of safe Petri nets, with certified witness
    lifting.

    A rule-based pipeline applied in front of every engine: each rule
    rewrites the net into a smaller one with the same answer to the
    query at hand, and emits the inverse mapping needed to replay a
    witness found on the reduced net against the {e original} net — the
    same inverse-construction trick as
    {!Petri.Safety.project_monitor_witness}, composed across every
    rule application.  Because a reduction bug would silently corrupt
    every downstream verdict, the lift is designed so that
    [Harness.Certify] can check the final trace against the original
    net semantics alone.

    {2 Rule catalogue and preservation matrix}

    All soundness arguments are made in the library's set semantics
    ({!Petri.Semantics.fire}), under the library-wide contract that the
    input net is safe (1-bounded); rules marked {e exact} induce a
    bijection between reachable markings (up to removed places) and
    need no safety assumption.

    - [Dead_transition] — [t] can never fire: either some input place
      has no producers and starts empty, or a non-negative P-semiflow
      [y] (Farkas, {!Petri.Invariant.p_semiflows}) bounds the weighted
      token count by [y·m0 < y·pre(t)].  Exact; preserves deadlock and
      safety.
    - [Unread_place] — no transition reads [p] ([consumers(p) = ∅]):
      its marking influences nothing.  Exact; preserves both.
    - [Constant_place] — [p] starts marked and every consumer returns
      it ([p ∈ •t ⇒ p ∈ t•]): in set semantics [p] stays marked
      forever, so it can be erased from every pre/postset.  Exact;
      preserves both.
    - [Duplicate_place] — [p] and [q] have identical arc relations and
      initial marking: always equally marked; one is dropped.  Exact;
      preserves both.
    - [Duplicate_transition] — [•t = •u] and [t• = u•]: [u] is
      dropped (any firing of [u] is a firing of [t]).  Exact;
      preserves both.
    - [Identity_transition] — [•t = t•]: firing is a no-op in set
      semantics, so removal keeps the reachable set intact — but a
      marking whose only enabled transition was [t] becomes dead.
      Preserves safety (coverability) {b only}; never fires for
      deadlock queries.
    - [Agglomeration] — serial place/transition chain fusion
      (post-agglomeration): for a place [p] with [m0(p) = 0], a single
      consumer [b] with [•b = {p}], and producers [H ∌ b], each
      [a ∈ H] fuses with [b] into [a+b] ([•(a+b) = •a],
      [(a+b)• = (a•∖{p}) ∪ b•]) and [p], [b], [H] disappear.  On safe
      nets this preserves deadlock and coverability of any cover
      avoiding [p] (protected places are never agglomerated); the
      witness lift expands [a+b ↦ a; b] and is exact in any net, so a
      lifted witness always replays on the original.

    Rules run to fixpoint (each application strictly shrinks
    [|P| + |T|]); per-rule application counts are reported as
    [reduce.rule.*] counters and the overall shrink factor as the
    [reduce.ratio] gauge in {!Gpo_obs}.

    {2 Fault injection}

    Every rule pass crosses the [Guard.Fault] probe site
    ["reduce.rule"].  An injected allocation failure (or a genuine
    [Out_of_memory]) degrades the whole pipeline to the {e identity}
    reduction — the caller gets the unreduced net back, never a
    half-applied mapping; injected cancellation unwinds with
    [Par.Cancel.Cancelled] as everywhere else. *)

type query =
  | Deadlock  (** Preserve existence of a reachable dead marking. *)
  | Safety
      (** Preserve coverability of marking sets avoiding the removed
          places (pass the cover as [protect]). *)

type rule =
  | Dead_transition
  | Unread_place
  | Constant_place
  | Duplicate_place
  | Duplicate_transition
  | Identity_transition
  | Agglomeration

val all_rules : rule list
(** Every rule, in pipeline order. *)

val rule_name : rule -> string
(** Counter-friendly name ("dead_transition", "agglomeration", …). *)

val preserves : query -> rule -> bool
(** The preservation matrix: [true] iff [rule] is verdict-preserving
    for [query].  Everything preserves both except
    [Identity_transition], which is safety-only. *)

type t = {
  original : Petri.Net.t;
  net : Petri.Net.t;  (** The reduced net (= [original] when nothing fired). *)
  query : query;
  rounds : int;  (** Fixpoint rounds until quiescence. *)
  applied : (rule * int) list;  (** Nonzero application counts, pipeline order. *)
  expansions : int array array;
      (** Witness lifting: reduced transition [t] expands to the
          original firing sequence [expansions.(t)]. *)
  place_origin : int array;
      (** [place_origin.(p)] is the original index of reduced place
          [p] (duplicates map to their kept representative). *)
  degraded : bool;
      (** [true] when a fault degraded the pipeline to the identity
          reduction. *)
}

val run :
  ?query:query -> ?protect:Petri.Net.place list -> ?rules:rule list ->
  ?max_rounds:int -> Petri.Net.t -> t
(** Reduce [net] to fixpoint with the rules that preserve [query]
    (default [Deadlock]), restricted to [rules] when given (for the
    per-rule differential tests).  [protect] lists original places
    that must survive into the reduced net untouched (the cover of a
    safety query); [max_rounds] (default [64]) caps the fixpoint.
    The pipeline is defensive: it never erases the last place or
    transition (engines expect non-degenerate nets), and a (possibly
    injected) [Out_of_memory] degrades to the identity reduction. *)

val identity : ?query:query -> Petri.Net.t -> t
(** The no-op reduction of [net] (what a degraded run returns). *)

val is_identity : t -> bool
(** [true] iff no rule fired ([net == original]). *)

val lift : t -> Petri.Trace.t -> Petri.Trace.t
(** Map a firing sequence of the reduced net to one of the original
    net by expanding every fused transition; the result replays on
    [original] and reaches a dead (resp. covering) marking whenever
    the reduced trace did. *)

val place_image : t -> Petri.Net.place -> Petri.Net.place option
(** The reduced index of an original place, when it survived
    ([Some _] is guaranteed for protected places). *)

val ratio : t -> float
(** [(|P| + |T|) / (|P'| + |T'|)] — 1.0 when nothing fired. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line rendering: sizes before/after, ratio, rule counts. *)
